// Package lsgraph is a locality-centric streaming graph engine, a Go
// implementation of the system described in "LSGraph: A Locality-centric
// High-performance Streaming Graph Engine" (EuroSys '24).
//
// A Graph stores a directed graph over dense vertex IDs and supports
// alternating phases of batched edge updates and parallel analytics. Each
// vertex's neighbors live in a structure chosen by degree — a cache-line
// vertex block inline, then a sorted array, then a Redundant Indexed Array
// (blocked gapped array with a first-element index), then a Hybrid Indexed
// Tree mixing learned-index internal nodes with RIA leaves — which keeps
// neighbor sets ordered and contiguous for analytics while bounding the
// data movement updates pay.
//
// Quick start:
//
//	g := lsgraph.New(numVertices)
//	g.InsertEdges(edges)                  // batched, parallel
//	dist := lsgraph.BFS(g, source)        // analytics on the new snapshot
//	g.DeleteEdges(stale)
//
// # Concurrency
//
// The package offers two usage models:
//
//   - Graph is the phase-alternating engine of the paper: updates must
//     not run concurrently with reads or other updates, while reads are
//     freely concurrent with each other. Graph.Snapshot carves out an
//     immutable CSR view for analytics that must survive later updates.
//   - Store is the concurrent serving layer: updates enqueue through a
//     single writer goroutine and readers pin epoch-numbered snapshots
//     with Store.View, so ingestion and analytics overlap freely. Use it
//     whenever update and read traffic cannot be phase-separated.
//
// All analytics entry points accept the Reader interface, which Graph,
// Store, StoreView, and Graph.Snapshot's view all satisfy.
package lsgraph

import (
	"lsgraph/internal/core"
	"lsgraph/internal/engine"
)

// Edge is a directed edge from Src to Dst. Store both directions for an
// undirected graph, as the paper does with symmetrized inputs.
type Edge struct {
	Src, Dst uint32
}

// Reader is the read-only graph interface every analytics entry point in
// this package accepts. It is satisfied by *Graph (between update
// batches), *Store and *StoreView (concurrently with ingestion), and the
// *core.Snapshot returned by Graph.Snapshot. Neighbor iteration visits
// neighbors in ascending vertex-ID order, which ordered-set kernels
// (notably triangle counting) rely on.
type Reader interface {
	// NumVertices returns the number of vertex slots; IDs are dense
	// [0, NumVertices).
	NumVertices() uint32
	// NumEdges returns the number of directed edges currently stored.
	NumEdges() uint64
	// Degree returns the out-degree of v.
	Degree(v uint32) uint32
	// ForEachNeighbor applies f to each out-neighbor of v in ascending
	// ID order.
	ForEachNeighbor(v uint32, f func(u uint32))
}

// BlockReader is the optional block-granular read path: a Reader whose
// adjacency lives in contiguous memory can yield it as slices instead of
// one callback per edge, removing an interface dispatch plus a closure
// call per edge from every kernel. *Graph, *Store, *StoreView, and
// Graph.Snapshot's view all implement it; the kernels and EdgeMap detect
// it once per run and fall back to ForEachNeighbor otherwise, so Reader
// stays the compatibility surface.
type BlockReader interface {
	Reader
	// NeighborBlocks yields v's adjacency as non-empty ascending []uint32
	// segments whose concatenation equals the ForEachNeighbor order.
	// Blocks alias engine storage: they are valid only until yield
	// returns and must not be mutated or retained. Returning false stops
	// the iteration.
	NeighborBlocks(v uint32, yield func(block []uint32) bool)
}

// Compile-time checks: every Reader in the package also offers the block
// read path.
var (
	_ BlockReader = (*Graph)(nil)
	_ BlockReader = (*Store)(nil)
	_ BlockReader = (*StoreView)(nil)
	_ BlockReader = (*core.Snapshot)(nil)
)

// settings collects everything the constructors configure: the engine's
// core.Config plus the serving-layer queue bounds and rebalancing policy
// a Store needs. Graph constructors ignore the serving fields.
type settings struct {
	cfg           core.Config
	maxQueue      int
	autoRebalance float64
	durDir        string
	dur           DurabilityOptions
}

// Option configures a Graph or Store at construction; see WithAlpha,
// WithM, WithWorkers, WithShards, WithMaxQueue, WithAutoRebalance, and
// WithDurability.
type Option func(*settings)

// WithAlpha sets the space amplification factor α (default 1.2): gapped
// structures reserve α× their element count, trading memory and scan cost
// for cheaper inserts (§6.5, Figures 14-15).
func WithAlpha(alpha float64) Option {
	return func(s *settings) { s.cfg.Alpha = alpha }
}

// WithM sets the RIA→HITree degree threshold M (default 4096; §6.5):
// vertices whose overflow exceeds M neighbors are promoted from the
// Redundant Indexed Array to the Hybrid Indexed Tree.
func WithM(m int) Option {
	return func(s *settings) { s.cfg.M = m }
}

// WithWorkers bounds the parallelism of batch updates and snapshot
// flattening (default GOMAXPROCS).
func WithWorkers(w int) Option {
	return func(s *settings) { s.cfg.Workers = w }
}

// WithShards partitions the vertex space into s contiguous shards
// (default 1). On a Graph, batch updates are scattered by source vertex
// and the shards apply in parallel. On a Store, each shard additionally
// gets its own writer goroutine, update queue, and independently
// published snapshot, and View composes a consistent vector of per-shard
// snapshots — the knob that scales concurrent ingest. With s == 1
// behavior is identical to an unsharded engine.
func WithShards(s int) Option {
	return func(st *settings) { st.cfg.Shards = s }
}

// WithMaxQueue sets a Store's per-shard update-queue bound in batches
// (default 64). Once a shard's queue holds this many pending batches,
// further same-op enqueues merge into the newest queued batch instead of
// growing the queue — callers are never blocked — and Store.Saturated
// reports true so front-ends can shed ingest load. Smaller values bound
// memory and visibility lag more tightly at the cost of earlier
// backpressure. Ignored by Graph constructors, which have no queue.
func WithMaxQueue(n int) Option {
	return func(s *settings) { s.maxQueue = n }
}

// WithAutoRebalance enables a Store's background skew watcher: when the
// hottest shard's routed-edge rate exceeds threshold times its fair share
// (threshold > 1; 1.5 means "50% over fair"), the store rebalances its
// partition map toward equal edge mass, moving contiguous vertex ranges
// between adjacent shards without stopping reads or unaffected writers.
// Zero (the default) disables the watcher; Store.Rebalance remains
// available for explicit control. Ignored by Graph constructors and by
// single-shard stores, which have nothing to rebalance.
func WithAutoRebalance(threshold float64) Option {
	return func(s *settings) { s.autoRebalance = threshold }
}

// Graph is the LSGraph engine in the paper's phase-alternating streaming
// model: updates must not run concurrently with reads or other updates;
// reads are freely concurrent with each other. For concurrent ingest and
// analytics without phase separation, wrap the same configuration in a
// Store instead.
type Graph struct {
	g *core.Graph
}

// New returns an empty graph with n vertex slots.
func New(n uint32, opts ...Option) *Graph {
	var s settings
	for _, o := range opts {
		o(&s)
	}
	return &Graph{g: core.New(n, s.cfg)}
}

// NewFromEdges returns a graph with n vertex slots preloaded with es via
// the batch-insert path.
func NewFromEdges(n uint32, es []Edge, opts ...Option) *Graph {
	g := New(n, opts...)
	g.InsertEdges(es)
	return g
}

// NumVertices returns the number of vertex slots.
func (g *Graph) NumVertices() uint32 { return g.g.NumVertices() }

// EnsureVertices grows the vertex space to at least n slots, for streams
// whose vertex set grows over time. Like updates, it must not run
// concurrently with reads.
func (g *Graph) EnsureVertices(n uint32) { g.g.EnsureVertices(n) }

// NumEdges returns the number of directed edges stored.
func (g *Graph) NumEdges() uint64 { return g.g.NumEdges() }

// Degree returns the out-degree of v.
func (g *Graph) Degree(v uint32) uint32 { return g.g.Degree(v) }

// Has reports whether edge (v, u) is present.
func (g *Graph) Has(v, u uint32) bool { return g.g.Has(v, u) }

// InsertEdges applies a batch of edge insertions in parallel. Duplicates
// within the batch and edges already present are ignored (set semantics).
func (g *Graph) InsertEdges(es []Edge) {
	src, dst := split(es)
	g.g.InsertBatch(src, dst)
}

// DeleteEdges applies a batch of edge deletions in parallel. Edges not
// present are ignored (set semantics).
func (g *Graph) DeleteEdges(es []Edge) {
	src, dst := split(es)
	g.g.DeleteBatch(src, dst)
}

// InsertBatch is the columnar variant of InsertEdges: it inserts the
// directed edges (src[i] -> dst[i]).
func (g *Graph) InsertBatch(src, dst []uint32) { g.g.InsertBatch(src, dst) }

// DeleteBatch is the columnar variant of DeleteEdges: it removes the
// directed edges (src[i] -> dst[i]).
func (g *Graph) DeleteBatch(src, dst []uint32) { g.g.DeleteBatch(src, dst) }

// ForEachNeighbor applies f to v's out-neighbors in ascending ID order.
// It is safe to call concurrently with other reads.
func (g *Graph) ForEachNeighbor(v uint32, f func(u uint32)) {
	g.g.ForEachNeighbor(v, f)
}

// NeighborBlocks yields v's out-neighbors as ascending contiguous slices
// straight out of the engine's storage: the inline vertex-block prefix
// first, then the overflow structure's occupied runs (RIA blocks, LIA
// runs, or whole sorted arrays), skipping gaps without copying. Blocks are
// valid only until yield returns and must not be mutated. See BlockReader.
func (g *Graph) NeighborBlocks(v uint32, yield func(block []uint32) bool) {
	g.g.NeighborBlocks(v, yield)
}

// Neighbors returns v's out-neighbors in ascending order as a new slice.
func (g *Graph) Neighbors(v uint32) []uint32 {
	return g.g.AppendNeighbors(v, make([]uint32, 0, g.g.Degree(v)))
}

// DeleteVertex removes every edge incident to v on a symmetrized graph
// (v's adjacency plus the reverse edges held by its neighbors).
func (g *Graph) DeleteVertex(v uint32) { g.g.DeleteVertex(v) }

// Snapshot returns an immutable CSR view of the current graph. The call
// itself counts as a read — take it between update batches — but the
// returned view is then fully independent: analytics may run on it
// concurrently with further updates to g, and it satisfies Reader, so it
// can be handed to any kernel in this package. (A Store does exactly this
// after every applied batch, with buffer reuse, to serve readers while
// ingesting.)
func (g *Graph) Snapshot() *core.Snapshot { return g.g.Snapshot() }

// MemoryUsage returns the engine's estimated resident bytes: the vertex
// block array plus every overflow structure (Table 3).
func (g *Graph) MemoryUsage() uint64 { return g.g.MemoryUsage() }

// IndexMemory returns the bytes spent on RIA index arrays and LIA learned
// models, Table 3's index-overhead numerator.
func (g *Graph) IndexMemory() uint64 { return g.g.IndexMemory() }

// Engine exposes the graph through the engine-neutral interface shared
// with the baseline systems, for code written against engine.Engine.
func (g *Graph) Engine() engine.Engine { return g.g }

// split converts an Edge slice into the columnar src/dst form the engine
// ingests.
func split(es []Edge) (src, dst []uint32) {
	src = make([]uint32, len(es))
	dst = make([]uint32, len(es))
	for i, e := range es {
		src[i], dst[i] = e.Src, e.Dst
	}
	return src, dst
}
