package lsgraph_test

import (
	"fmt"

	"lsgraph"
)

// sym returns both directions of the given undirected edges.
func sym(pairs ...[2]uint32) []lsgraph.Edge {
	var es []lsgraph.Edge
	for _, p := range pairs {
		es = append(es,
			lsgraph.Edge{Src: p[0], Dst: p[1]},
			lsgraph.Edge{Src: p[1], Dst: p[0]})
	}
	return es
}

func Example() {
	g := lsgraph.NewFromEdges(5, sym([2]uint32{0, 1}, [2]uint32{1, 2}, [2]uint32{2, 3}))
	fmt.Println("edges:", g.NumEdges())
	fmt.Println("neighbors of 1:", g.Neighbors(1))
	g.DeleteEdges(sym([2]uint32{1, 2}))
	fmt.Println("after delete:", g.Neighbors(1))
	// Output:
	// edges: 6
	// neighbors of 1: [0 2]
	// after delete: [0]
}

func ExampleBFS() {
	g := lsgraph.NewFromEdges(5, sym([2]uint32{0, 1}, [2]uint32{1, 2}))
	depth := lsgraph.BFSLevels(g, 0)
	fmt.Println(depth)
	// Output: [0 1 2 -1 -1]
}

func ExampleConnectedComponents() {
	g := lsgraph.NewFromEdges(6, sym([2]uint32{0, 1}, [2]uint32{3, 4}))
	fmt.Println(lsgraph.ConnectedComponents(g))
	// Output: [0 0 2 3 3 5]
}

func ExampleTriangleCount() {
	// A triangle plus a dangling edge.
	g := lsgraph.NewFromEdges(5, sym(
		[2]uint32{0, 1}, [2]uint32{1, 2}, [2]uint32{0, 2}, [2]uint32{2, 3}))
	tri, _, _ := lsgraph.TriangleCount(g)
	fmt.Println(tri)
	// Output: 1
}

func ExampleGraph_InsertEdges() {
	g := lsgraph.New(4)
	g.InsertEdges([]lsgraph.Edge{{Src: 2, Dst: 3}, {Src: 2, Dst: 3}}) // duplicates collapse
	fmt.Println(g.NumEdges(), g.Has(2, 3))
	// Output: 1 true
}

func ExampleIncrementalCC() {
	g := lsgraph.NewFromEdges(6, sym([2]uint32{0, 1}, [2]uint32{3, 4}))
	cc := lsgraph.NewIncrementalCC(g)
	fmt.Println(cc.Same(0, 4))
	link := sym([2]uint32{1, 3})
	g.InsertEdges(link)
	cc.OnInsert(link)
	fmt.Println(cc.Same(0, 4))
	// Output:
	// false
	// true
}

func ExampleGraph_Snapshot() {
	g := lsgraph.NewFromEdges(3, sym([2]uint32{0, 1}))
	snap := g.Snapshot()
	g.InsertEdges(sym([2]uint32{1, 2}))
	fmt.Println(snap.Degree(1), g.Degree(1))
	// Output: 1 2
}
