GO ?= go

.PHONY: all build test race verify bench clean

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Race-detector pass over the packages with real cross-goroutine traffic:
# the serving layer, the batch pipeline, the worker pool, and the sharded
# metrics registry.
race:
	$(GO) test -race lsgraph/internal/serve lsgraph/internal/core lsgraph/internal/parallel lsgraph/internal/obs

verify:
	sh scripts/verify.sh

# Overhead check for the observability hooks (compare disabled vs enabled).
bench-obs:
	$(GO) test -run xxx -bench ObsOverhead -count 3 ./internal/core

# Update/analytics benchmark sweep; writes ns/op per benchmark to
# BENCH_pr2.json (the perf trajectory record).
bench:
	sh scripts/bench.sh

clean:
	$(GO) clean ./...
