GO ?= go

.PHONY: all build test race verify bench clean

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Race-detector pass over the packages with real cross-goroutine traffic;
# the package list lives in scripts/race.sh (shared with scripts/verify.sh).
race:
	sh scripts/race.sh

verify:
	sh scripts/verify.sh

# Overhead check for the observability hooks (compare disabled vs enabled).
bench-obs:
	$(GO) test -run xxx -bench ObsOverhead -count 3 ./internal/core

# Update/analytics benchmark sweep; writes ns/op per benchmark to
# BENCH_<tag>.json (the perf trajectory record). The tag defaults to the
# short git commit hash; override with `make bench TAG=mytag`.
bench:
	sh scripts/bench.sh $(TAG)

clean:
	$(GO) clean ./...
