GO ?= go

.PHONY: all build test race verify bench bench-analytics soak soak-recover fuzz trace-demo loadtest bench-recover clean

all: build

build:
	$(GO) build ./...

test:
	$(GO) test -shuffle=on ./...

# Race-detector pass over the packages with real cross-goroutine traffic;
# the package list lives in scripts/race.sh (shared with scripts/verify.sh).
race:
	sh scripts/race.sh

verify:
	sh scripts/verify.sh

# Long-running randomized differential sweep (internal/check simulator)
# against the refgraph oracle. Bound it with SOAK_TIME, e.g.
# `make soak SOAK_TIME=10m`.
SOAK_TIME ?= 2m
soak:
	LSGRAPH_SOAK=1 LSGRAPH_SOAK_TIME=$(SOAK_TIME) \
		$(GO) test -run '^TestSoak$$' -timeout 0 -v ./internal/check

# Short coverage-guided fuzzing pass over every fuzz target; override the
# per-target budget with FUZZTIME, e.g. `make fuzz FUZZTIME=1m`.
fuzz:
	sh scripts/fuzz.sh

# Overhead check for the observability hooks (compare disabled vs enabled,
# and the flight recorder tracing-off vs tracing-on).
bench-obs:
	$(GO) test -run xxx -bench ObsOverhead -count 3 ./internal/core

# Flight-recorder demo: run the traced lsbench workload (4 shards, forced
# coalescing, kernel + view-pin spans), assert every lifecycle phase was
# recorded, and write trace.json — load it in ui.perfetto.dev or
# chrome://tracing. CI uploads trace.json as an artifact.
trace-demo:
	$(GO) run ./cmd/lsbench -exp trace -quick -trace trace.json | tee trace-demo.log
	@grep -q "phase coverage: OK" trace-demo.log || { echo "trace-demo: lifecycle phase coverage incomplete" >&2; rm -f trace-demo.log; exit 1; }
	@rm -f trace-demo.log
	@echo "trace-demo: trace.json written; load it in ui.perfetto.dev"

# Update/analytics benchmark sweep; writes ns/op per benchmark to
# BENCH_<tag>.json (the perf trajectory record). The tag defaults to the
# short git commit hash; override with `make bench TAG=mytag`.
bench:
	sh scripts/bench.sh $(TAG)

# Analytics-kernel smoke: neighbor iteration (callback vs blocks) plus the
# kernel benchmarks on the seeded power-law dataset, recorded to
# BENCH_<tag>.json like `make bench`. Acceptance gate for read-path work.
bench-analytics:
	BENCHPKGS=./internal/algo BENCHPAT='NeighborIteration|Kernel' \
		sh scripts/bench.sh $(TAG)

# End-to-end serving SLO measurement: boot lsgraphd, drive it with the
# open-loop lsload harness (seeded Poisson arrivals, T1/T4/T5 workload
# mixes), and write p50/p90/p99 + throughput to BENCH_pr8.json. Tune with
# LOADTEST_TIME / LOADTEST_RATE / LOADTEST_MIX, e.g.
# `make loadtest LOADTEST_TIME=30s LOADTEST_RATE=1000`.
export LOADTEST_TIME LOADTEST_RATE LOADTEST_MIX LOADTEST_SHARDS LOADTEST_ADDR
loadtest:
	sh scripts/loadtest.sh pr9

# Long-running kill-and-recover sweep: 150 seeded crash scenarios (50
# seeds x 3 shard counts, crash points drawn from the full lifecycle
# matrix), each recovered and differentially checked against the
# acked-records oracle.
soak-recover:
	LSGRAPH_SOAK_RECOVER=1 \
		$(GO) test -count=1 -run '^TestSoakRecover$$' -timeout 0 -v ./internal/check

# Durability benchmark: WAL ingest overhead per fsync policy vs the
# memory-only baseline, plus recovery speed (full replay and
# checkpoint-bounded). Writes BENCH_pr10.json; the acceptance bar is
# <10% ingest overhead at fsync=interval. Tune repetitions with TRIALS.
TRIALS ?= 3
bench-recover:
	$(GO) run ./cmd/lsbench -exp recover -trials $(TRIALS) -json BENCH_pr10.json -tag pr10

clean:
	$(GO) clean ./...
