package lsgraph

import (
	"testing"

	"lsgraph/internal/gen"
)

func symEdges(t *testing.T, scale uint, m int, seed uint64) []Edge {
	t.Helper()
	raw := gen.NewRMatPaper(scale, seed).Edges(m)
	sym := gen.Symmetrize(raw)
	out := make([]Edge, len(sym))
	for i, e := range sym {
		out[i] = Edge{Src: e.Src, Dst: e.Dst}
	}
	return out
}

func TestPublicAPIRoundTrip(t *testing.T) {
	es := symEdges(t, 9, 3000, 11)
	g := NewFromEdges(512, es, WithAlpha(1.2), WithM(256), WithWorkers(4))
	if g.NumVertices() != 512 {
		t.Fatal("NumVertices")
	}
	if g.NumEdges() != uint64(len(es)) {
		t.Fatalf("NumEdges=%d want %d", g.NumEdges(), len(es))
	}
	for _, e := range es[:100] {
		if !g.Has(e.Src, e.Dst) {
			t.Fatalf("missing edge %v", e)
		}
	}
	// Degree must equal neighbor count and neighbors must be sorted.
	for v := uint32(0); v < 512; v++ {
		ns := g.Neighbors(v)
		if uint32(len(ns)) != g.Degree(v) {
			t.Fatalf("degree mismatch at %d", v)
		}
		for i := 1; i < len(ns); i++ {
			if ns[i-1] >= ns[i] {
				t.Fatalf("unsorted neighbors at %d", v)
			}
		}
	}
	g.DeleteEdges(es)
	if g.NumEdges() != 0 {
		t.Fatalf("NumEdges=%d after deleting all", g.NumEdges())
	}
}

func TestAlgorithmsRunViaFacade(t *testing.T) {
	es := symEdges(t, 9, 4000, 3)
	g := NewFromEdges(512, es)
	parent := BFS(g, 0)
	if parent[0] != 0 {
		t.Fatal("BFS source parent")
	}
	depth := BFSLevels(g, 0)
	if depth[0] != 0 {
		t.Fatal("BFSLevels source depth")
	}
	bc := BC(g, 0)
	if len(bc) != 512 {
		t.Fatal("BC length")
	}
	pr := PageRank(g, 5)
	var sum float64
	for _, r := range pr {
		sum += r
	}
	if sum < 0.99 || sum > 1.01 {
		t.Fatalf("PageRank sum %g", sum)
	}
	cc := ConnectedComponents(g)
	for v, c := range cc {
		if c > uint32(v) {
			t.Fatalf("component label %d above vertex %d", c, v)
		}
	}
	tri, trav, total := TriangleCount(g)
	if tri == 0 {
		t.Fatal("expected triangles in rMat graph")
	}
	if total < trav {
		t.Fatal("TC timing inconsistent")
	}
}

func TestEdgeMapBFS(t *testing.T) {
	// A BFS built from the public EdgeMap primitive must agree with the
	// built-in BFS on reachability.
	es := symEdges(t, 8, 1500, 9)
	g := NewFromEdges(256, es)
	n := g.NumVertices()
	depth := make([]int32, n)
	for i := range depth {
		depth[i] = -1
	}
	depth[0] = 0
	frontier := NewVertexSubset(n, 0)
	level := int32(0)
	for !frontier.IsEmpty() {
		level++
		lv := level
		frontier = EdgeMap(g, frontier,
			func(u uint32) bool { return depth[u] == -1 },
			func(v, u uint32) bool {
				// CAS-free is fine: duplicates collapse in EdgeMap and any
				// writer writes the same level value.
				if depth[u] == -1 {
					depth[u] = lv
					return true
				}
				return false
			})
	}
	want := BFSLevels(g, 0)
	for v := range want {
		if (want[v] == -1) != (depth[v] == -1) {
			t.Fatalf("EdgeMap BFS reachability differs at %d", v)
		}
	}
}

func TestVertexMapAndSubset(t *testing.T) {
	s := NewVertexSubset(10, 1, 3, 5, 7)
	if s.Len() != 4 || s.IsEmpty() {
		t.Fatal("subset basics")
	}
	if !s.Contains(3) || s.Contains(2) {
		t.Fatal("Contains")
	}
	even := VertexMap(s, func(v uint32) bool { return v%2 == 1 && v < 6 })
	if even.Len() != 3 {
		t.Fatalf("VertexMap kept %d", even.Len())
	}
}

func TestMemoryReporting(t *testing.T) {
	es := symEdges(t, 10, 20000, 5)
	g := NewFromEdges(1024, es)
	if g.MemoryUsage() == 0 || g.IndexMemory() == 0 {
		t.Fatal("memory reporting zero")
	}
	if g.IndexMemory() >= g.MemoryUsage() {
		t.Fatal("index exceeds total memory")
	}
	if g.Engine() == nil {
		t.Fatal("Engine() nil")
	}
}
