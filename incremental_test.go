package lsgraph

import (
	"fmt"
	"math/rand"
	"testing"
)

// Differential tests for the incremental maintainers: after every
// randomized insert/delete batch on a symmetrized graph, IncrementalCC
// and IncrementalBFS must agree exactly with the from-scratch kernels on
// the same graph. This is the streaming-analytics contract of §3.1: the
// incremental path is an optimization, never a different answer.

const incrTestVerts = 80

// symmetrize returns es with the reverse of every edge appended, the
// undirected representation the maintainers require.
func symmetrize(es []Edge) []Edge {
	out := make([]Edge, 0, 2*len(es))
	for _, e := range es {
		out = append(out, e, Edge{Src: e.Dst, Dst: e.Src})
	}
	return out
}

// canonicalLabels rewrites arbitrary component labels into
// min-vertex-ID-per-component form so two labelings can be compared
// regardless of which representative each algorithm picked.
func canonicalLabels(labels []uint32) []uint32 {
	min := map[uint32]uint32{}
	for v, l := range labels {
		if m, ok := min[l]; !ok || uint32(v) < m {
			min[l] = uint32(v)
		}
	}
	out := make([]uint32, len(labels))
	for v, l := range labels {
		out[v] = min[l]
	}
	return out
}

// incrWorkload drives one seeded random insert/delete stream and checks
// both maintainers against the from-scratch kernels after every batch.
func incrWorkload(t *testing.T, seed int64, shards int) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	g := New(incrTestVerts, WithShards(shards))
	cc := NewIncrementalCC(g)
	bfs := NewIncrementalBFS(g, 0)

	// present tracks live undirected edges (smaller endpoint first) so
	// delete batches can target real edges.
	type ukey struct{ u, v uint32 }
	present := map[ukey]bool{}
	live := func() []ukey {
		ks := make([]ukey, 0, len(present))
		for k := range present {
			ks = append(ks, k)
		}
		return ks
	}

	verify := func(round int, what string) {
		t.Helper()
		ctx := fmt.Sprintf("seed %d shards %d round %d after %s", seed, shards, round, what)
		got := canonicalLabels(cc.Labels())
		want := canonicalLabels(ConnectedComponents(g))
		for v := range want {
			if got[v] != want[v] {
				t.Fatalf("%s: CC label of %d: incremental %d, from-scratch %d", ctx, v, got[v], want[v])
			}
		}
		gd, wd := bfs.Depths(), BFSLevels(g, 0)
		for v := range wd {
			if gd[v] != wd[v] {
				t.Fatalf("%s: BFS depth of %d: incremental %d, from-scratch %d", ctx, v, gd[v], wd[v])
			}
		}
	}

	for round := 0; round < 12; round++ {
		// Insert batch: random undirected edges, duplicates possible.
		var ins []Edge
		for i := 0; i < 10+rng.Intn(30); i++ {
			u := uint32(rng.Intn(incrTestVerts))
			v := uint32(rng.Intn(incrTestVerts))
			if u == v {
				continue
			}
			if u > v {
				u, v = v, u
			}
			ins = append(ins, Edge{Src: u, Dst: v})
			present[ukey{u, v}] = true
		}
		ins = symmetrize(ins)
		g.InsertEdges(ins)
		cc.OnInsert(ins)
		bfs.OnInsert(ins)
		verify(round, "insert")

		// Delete batch: mostly live edges (so components can split and
		// shortest paths can lengthen), plus a few absent no-ops.
		var del []Edge
		for _, k := range live() {
			if rng.Intn(4) == 0 {
				del = append(del, Edge{Src: k.u, Dst: k.v})
				delete(present, k)
			}
		}
		for i := 0; i < 3; i++ {
			u := uint32(rng.Intn(incrTestVerts))
			v := uint32(rng.Intn(incrTestVerts))
			if u != v && !present[ukey{min32(u, v), max32(u, v)}] {
				del = append(del, Edge{Src: u, Dst: v})
			}
		}
		if len(del) == 0 {
			continue
		}
		del = symmetrize(del)
		g.DeleteEdges(del)
		cc.OnDelete(del)
		bfs.OnDelete(del)
		verify(round, "delete")
	}
}

func min32(a, b uint32) uint32 {
	if a < b {
		return a
	}
	return b
}

func max32(a, b uint32) uint32 {
	if a > b {
		return a
	}
	return b
}

// TestIncrementalDifferential sweeps seeds and shard counts: incremental
// CC and BFS must match their from-scratch counterparts after every batch.
func TestIncrementalDifferential(t *testing.T) {
	for _, shards := range []int{1, 4} {
		for seed := int64(0); seed < 4; seed++ {
			shards, seed := shards, seed
			t.Run(fmt.Sprintf("shards=%d/seed=%d", shards, seed), func(t *testing.T) {
				t.Parallel()
				incrWorkload(t, seed, shards)
			})
		}
	}
}

// TestIncrementalDeleteFallback pins the safety property behind the
// fallback heuristic: randomized delete-heavy streams must stay exact even
// when some deletions are repairable without a full recomputation (the
// maintainers may recompute, but never return a stale answer).
func TestIncrementalDeleteFallback(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	g := New(16, WithShards(2))
	cc := NewIncrementalCC(g)
	bfs := NewIncrementalBFS(g, 0)

	// A path 0-1-2-...-15: every interior deletion splits a component and
	// lengthens distances, forcing the recomputation path.
	var path []Edge
	for u := uint32(0); u < 15; u++ {
		path = append(path, Edge{Src: u, Dst: u + 1})
	}
	path = symmetrize(path)
	g.InsertEdges(path)
	cc.OnInsert(path)
	bfs.OnInsert(path)

	for i := 0; i < 8; i++ {
		u := uint32(1 + rng.Intn(13))
		cut := symmetrize([]Edge{{Src: u, Dst: u + 1}})
		g.DeleteEdges(cut)
		cc.OnDelete(cut)
		bfs.OnDelete(cut)

		got := canonicalLabels(cc.Labels())
		want := canonicalLabels(ConnectedComponents(g))
		for v := range want {
			if got[v] != want[v] {
				t.Fatalf("cut %d: CC label of %d: incremental %d, from-scratch %d", i, v, got[v], want[v])
			}
		}
		gd, wd := bfs.Depths(), BFSLevels(g, 0)
		for v := range wd {
			if gd[v] != wd[v] {
				t.Fatalf("cut %d: BFS depth of %d: incremental %d, from-scratch %d", i, v, gd[v], wd[v])
			}
		}
		// Reconnect so later cuts keep hitting live edges.
		g.InsertEdges(cut)
		cc.OnInsert(cut)
		bfs.OnInsert(cut)
	}
	if cc.Recomputes() == 0 && bfs.Recomputes() == 0 {
		t.Error("delete-heavy stream never exercised the recomputation fallback")
	}
}
