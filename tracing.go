package lsgraph

import (
	"fmt"
	"io"
	"strconv"
	"strings"

	"lsgraph/internal/trace"
)

// Tracing: alongside the aggregate metrics registry, the engine carries a
// flight recorder (internal/trace) permanently wired through the batch
// lifecycle — enqueue, coalesce, scatter, per-shard prepare
// (pack/sort/group), apply, snapshot publish, reclaim — plus kernel runs
// and view pins. Recording is off by default and costs one atomic load per
// instrumented site while off; on, each span is a lock-free ring-buffer
// write. Traces export as Chrome trace-event JSON (load in Perfetto or
// chrome://tracing) or as a human-readable slow-batch autopsy. The
// cmd/lsgraph and cmd/lsbench CLIs expose the same via their -trace flags,
// and MetricsHandler serves /debug/trace and /debug/trace/autopsy.

// TraceMode selects the flight recorder's sampling policy.
type TraceMode = trace.Mode

const (
	// TraceOff records nothing (the default).
	TraceOff = trace.Off
	// TraceAll records every lifecycle event.
	TraceAll = trace.All
	// TraceSample records only batches whose ID is a multiple of the
	// configured divisor (non-batch events are always kept).
	TraceSample = trace.Sample
	// TraceTail records everything but exports only full traces of batches
	// whose enqueue-to-publish latency exceeded a moving p99.
	TraceTail = trace.Tail
)

// EnableTracing turns the flight recorder on (TraceAll) or off. Events
// already recorded are retained across toggles.
func EnableTracing(on bool) {
	if on {
		trace.SetMode(trace.All, 1)
	} else {
		trace.SetMode(trace.Off, 1)
	}
}

// SetTraceMode sets the sampling policy directly. sampleN is the 1-in-N
// divisor, meaningful only with TraceSample.
func SetTraceMode(m TraceMode, sampleN int) { trace.SetMode(m, sampleN) }

// TracingEnabled reports whether the flight recorder is on in any mode.
func TracingEnabled() bool { return trace.Enabled() }

// WriteTrace writes the recorded trace to w as Chrome trace-event JSON,
// loadable in Perfetto (ui.perfetto.dev) or chrome://tracing. In TraceTail
// mode only the retained slow-batch traces are exported.
func WriteTrace(w io.Writer) error { return trace.WriteChrome(w) }

// WriteTraceAutopsy writes the human-readable slow-batch report: the
// slowest traced batches by end-to-end latency, each with its per-phase
// breakdown and dominant phase.
func WriteTraceAutopsy(w io.Writer) error { return trace.WriteAutopsy(w) }

// ParseTraceMode parses a CLI-style trace mode: "off", "all" (or "on"),
// "sample=N", "tail".
func ParseTraceMode(s string) (TraceMode, int, error) {
	switch {
	case s == "" || s == "off":
		return trace.Off, 1, nil
	case s == "all" || s == "on":
		return trace.All, 1, nil
	case s == "tail":
		return trace.Tail, 1, nil
	case strings.HasPrefix(s, "sample="):
		n, err := strconv.Atoi(strings.TrimPrefix(s, "sample="))
		if err != nil || n < 1 {
			return trace.Off, 1, fmt.Errorf("lsgraph: bad sample divisor in trace mode %q", s)
		}
		return trace.Sample, n, nil
	}
	return trace.Off, 1, fmt.Errorf("lsgraph: unknown trace mode %q (want off, all, sample=N, tail)", s)
}
