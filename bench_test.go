// Benchmarks mapping one testing.B to every table and figure of the
// paper's evaluation (see DESIGN.md's experiment index). These run the same
// workloads as cmd/lsbench at a reduced scale; custom metrics report the
// quantity each figure plots (edges/s for the update figures, ns/op for
// the analytics ones, bytes for Table 3).
//
// Regenerate everything with:
//
//	go test -bench=. -benchmem
//
// or at paper-trend scale with:
//
//	go run ./cmd/lsbench
package lsgraph

import (
	"fmt"
	"testing"

	"lsgraph/internal/algo"
	"lsgraph/internal/bench"
	"lsgraph/internal/core"
	"lsgraph/internal/engine"
	"lsgraph/internal/sortledton"
	"lsgraph/internal/terrace"
)

// benchScale keeps -bench runs in tens of seconds.
func benchScale() bench.Scale {
	return bench.Scale{Base: 11, BatchSizes: []int{1_000, 10_000, 100_000}, Trials: 1}
}

// insertThroughput measures one insert+delete cycle of batch size b,
// reporting edges/s.
func insertThroughput(b *testing.B, e engine.Engine, d *bench.Dataset, size int) {
	b.ReportAllocs()
	var inserted int
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		src, dst := d.UpdateBatch(size, i)
		b.StartTimer()
		e.InsertBatch(src, dst)
		b.StopTimer()
		e.DeleteBatch(src, dst)
		b.StartTimer()
		inserted += size
	}
	b.ReportMetric(float64(inserted)/b.Elapsed().Seconds(), "edges/s")
}

// BenchmarkFig03Motivation reproduces Figure 3: Terrace-vs-Aspen BFS and
// insertion throughput, the gap motivating LSGraph.
func BenchmarkFig03Motivation(b *testing.B) {
	s := benchScale()
	d, _ := bench.MakeDataset("OR-sim", s)
	for _, name := range []string{"Terrace", "Aspen"} {
		e := bench.Loaded(name, d, 0)
		b.Run("BFS/"+name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				algo.BFS(e, 0, 0)
			}
		})
		b.Run("Insert100k/"+name, func(b *testing.B) {
			insertThroughput(b, e, d, 100_000)
		})
	}
}

// BenchmarkFig04PMAShare reproduces Figure 4: the dominance of PMA search
// and movement inside Terrace's single-threaded update path.
func BenchmarkFig04PMAShare(b *testing.B) {
	s := benchScale()
	d, _ := bench.MakeDataset("LJ-sim", s)
	g := terrace.New(d.N, 1)
	g.Instrument = true
	src, dst := bench.Split(d.Edges)
	g.InsertBatch(src, dst)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bs, bd := d.UpdateBatch(50_000, i)
		g.InsertBatch(bs, bd)
		b.StopTimer()
		g.DeleteBatch(bs, bd)
		b.StartTimer()
	}
	st := g.PMAStats()
	b.ReportMetric(float64(g.Stats.PMANanos.Load())/float64(g.Stats.UpdateNanos.Load()), "pma-share")
	b.ReportMetric(float64(st.SearchProbes)/float64(st.SearchProbes+st.Moved), "search-frac")
}

// BenchmarkFig12InsertThroughput reproduces Figure 12: insertion
// throughput of all four systems across batch sizes (LJ and OR stand-ins;
// run cmd/lsbench for all five graphs).
func BenchmarkFig12InsertThroughput(b *testing.B) {
	s := benchScale()
	for _, d := range bench.SmallDatasets(s) {
		for _, size := range s.BatchSizes {
			for _, name := range bench.EngineNames {
				e := bench.Loaded(name, d, 0)
				b.Run(fmt.Sprintf("%s/batch%d/%s", d.Name, size, name), func(b *testing.B) {
					insertThroughput(b, e, d, size)
				})
			}
		}
	}
}

// BenchmarkDeleteThroughput reproduces §6.2's deletion comparison.
func BenchmarkDeleteThroughput(b *testing.B) {
	s := benchScale()
	d, _ := bench.MakeDataset("LJ-sim", s)
	const size = 100_000
	for _, name := range bench.EngineNames {
		e := bench.Loaded(name, d, 0)
		b.Run(name, func(b *testing.B) {
			var deleted int
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				src, dst := d.UpdateBatch(size, i)
				e.InsertBatch(src, dst)
				b.StartTimer()
				e.DeleteBatch(src, dst)
				deleted += size
			}
			b.ReportMetric(float64(deleted)/b.Elapsed().Seconds(), "edges/s")
		})
	}
}

// BenchmarkSmallBatch reproduces §6.2's batch-size-10 comparison.
func BenchmarkSmallBatch(b *testing.B) {
	s := benchScale()
	d, _ := bench.MakeDataset("LJ-sim", s)
	for _, name := range bench.EngineNames {
		e := bench.Loaded(name, d, 0)
		b.Run(name, func(b *testing.B) {
			insertThroughput(b, e, d, 10)
		})
	}
}

// BenchmarkAblation reproduces §6.2's component analysis: LSGraph against
// its PMA-for-RIA, RIA-only, and binary-search variants.
func BenchmarkAblation(b *testing.B) {
	s := benchScale()
	d, _ := bench.MakeDataset("OR-sim", s)
	variants := []struct {
		name string
		cfg  core.Config
	}{
		{"LSGraph", core.Config{}},
		{"PMA-for-RIA", core.Config{Overflow: core.KindPMA}},
		{"RIA-only", core.Config{Overflow: core.KindRIAOnly}},
		{"BinarySearch", core.Config{DisableModel: true}},
	}
	for _, v := range variants {
		g := core.New(d.N, v.cfg)
		src, dst := bench.Split(d.Edges)
		g.InsertBatch(src, dst)
		b.Run(v.name, func(b *testing.B) {
			insertThroughput(b, g, d, 100_000)
		})
	}
}

// BenchmarkFig13Analytics reproduces Figure 13: BFS and BC across all four
// systems.
func BenchmarkFig13Analytics(b *testing.B) {
	s := benchScale()
	d, _ := bench.MakeDataset("LJ-sim", s)
	for _, name := range bench.EngineNames {
		e := bench.Loaded(name, d, 0)
		b.Run("BFS/"+name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				algo.BFS(e, 0, 0)
			}
		})
		b.Run("BC/"+name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				algo.BC(e, 0, 0)
			}
		})
	}
}

// BenchmarkTable2 reproduces Table 2: PR, CC, and TC on LSGraph and
// Terrace.
func BenchmarkTable2(b *testing.B) {
	s := benchScale()
	d, _ := bench.MakeDataset("LJ-sim", s)
	for _, name := range []string{"LSGraph", "Terrace"} {
		e := bench.Loaded(name, d, 0)
		b.Run("PR/"+name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				algo.PageRank(e, 10, 0)
			}
		})
		b.Run("CC/"+name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				algo.CC(e, 0)
			}
		})
		b.Run("TC/"+name, func(b *testing.B) {
			var travFrac float64
			for i := 0; i < b.N; i++ {
				r := algo.TriangleCount(e, 0)
				travFrac = r.Traversal.Seconds() / r.Total.Seconds()
			}
			b.ReportMetric(travFrac, "traversal-frac")
		})
	}
}

// BenchmarkTable3Memory reproduces Table 3: loaded-graph memory footprint
// per system, plus LSGraph's index overhead, reported as custom metrics.
func BenchmarkTable3Memory(b *testing.B) {
	s := benchScale()
	d, _ := bench.MakeDataset("LJ-sim", s)
	for _, name := range bench.EngineNames {
		b.Run(name, func(b *testing.B) {
			var mem, idx uint64
			for i := 0; i < b.N; i++ {
				e := bench.Loaded(name, d, 0)
				mem = e.MemoryUsage()
				if g, ok := e.(*core.Graph); ok {
					idx = g.IndexMemory()
				}
			}
			b.ReportMetric(float64(mem), "bytes")
			if idx > 0 {
				b.ReportMetric(float64(idx)/float64(mem), "index-frac")
			}
		})
	}
}

// BenchmarkFig14Sensitivity reproduces Figure 14: insertion time across
// the α grid (M fixed to the default at this scale).
func BenchmarkFig14Sensitivity(b *testing.B) {
	s := benchScale()
	d, _ := bench.MakeDataset("LJ-sim", s)
	for _, alpha := range []float64{1.1, 1.2, 1.5, 2.0} {
		g := core.New(d.N, core.Config{Alpha: alpha})
		src, dst := bench.Split(d.Edges)
		g.InsertBatch(src, dst)
		b.Run(fmt.Sprintf("alpha%.1f", alpha), func(b *testing.B) {
			insertThroughput(b, g, d, 100_000)
		})
	}
}

// BenchmarkFig15SensitivityPR reproduces Figure 15: PageRank time across
// the α and M grid.
func BenchmarkFig15SensitivityPR(b *testing.B) {
	s := benchScale()
	d, _ := bench.MakeDataset("LJ-sim", s)
	for _, alpha := range []float64{1.1, 1.2, 2.0} {
		for _, m := range []int{1 << 8, 1 << 12} {
			g := core.New(d.N, core.Config{Alpha: alpha, M: m})
			src, dst := bench.Split(d.Edges)
			g.InsertBatch(src, dst)
			b.Run(fmt.Sprintf("alpha%.1f/M%d", alpha, m), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					algo.PageRank(g, 10, 0)
				}
			})
		}
	}
}

// BenchmarkFig16ContinuousInserts reproduces Figure 16: five consecutive
// large batches without intervening deletes, stressing HITree's vertical
// movement.
func BenchmarkFig16ContinuousInserts(b *testing.B) {
	s := benchScale()
	d, _ := bench.MakeDataset("OR-sim", s)
	for _, alpha := range []float64{1.1, 1.2, 2.0} {
		b.Run(fmt.Sprintf("alpha%.1f", alpha), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				g := core.New(d.N, core.Config{Alpha: alpha})
				src, dst := bench.Split(d.Edges)
				g.InsertBatch(src, dst)
				b.StartTimer()
				for round := 0; round < 5; round++ {
					bs, bd := d.UpdateBatch(100_000, round)
					g.InsertBatch(bs, bd)
				}
			}
		})
	}
}

// BenchmarkFig17Scalability reproduces Figure 17: insertion throughput
// versus worker count for all four systems.
func BenchmarkFig17Scalability(b *testing.B) {
	s := benchScale()
	d, _ := bench.MakeDataset("OR-sim", s)
	for _, workers := range []int{1, 2, 4, 8} {
		for _, name := range bench.EngineNames {
			e := bench.Loaded(name, d, workers)
			b.Run(fmt.Sprintf("w%d/%s", workers, name), func(b *testing.B) {
				insertThroughput(b, e, d, 100_000)
			})
		}
	}
}

// BenchmarkStreamingScenario reproduces §6.5's real-world streaming-graph
// experiment on the temporal stand-in streams.
func BenchmarkStreamingScenario(b *testing.B) {
	s := benchScale()
	for _, name := range bench.EngineNames {
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				stream := streamEdges(s)
				cut := len(stream.src) * 9 / 10
				e := bench.NewEngine(name, stream.n, 0)
				e.InsertBatch(stream.src[:cut], stream.dst[:cut])
				b.StartTimer()
				e.InsertBatch(stream.src[cut:], stream.dst[cut:])
			}
		})
	}
}

type streamCols struct {
	n        uint32
	src, dst []uint32
}

func streamEdges(s bench.Scale) streamCols {
	d, _ := bench.MakeDataset("LJ-sim", s)
	src, dst := bench.Split(d.Edges)
	return streamCols{n: d.N, src: src, dst: dst}
}

// BenchmarkGraph500 reproduces §6.5's larger-dataset experiment at bench
// scale: load a graph500-parameter Kronecker graph and ingest updates.
func BenchmarkGraph500(b *testing.B) {
	s := benchScale()
	s.Base += 1
	for _, name := range []string{"LSGraph", "Aspen", "PaC-tree"} {
		b.Run(name, func(b *testing.B) {
			d, _ := bench.MakeDataset("TW-sim", s) // largest stand-in at this scale
			e := bench.Loaded(name, d, 0)
			insertThroughput(b, e, d, 100_000)
		})
	}
}

// BenchmarkKCore measures the extension kernel (k-core decomposition) on
// LSGraph and Terrace, the same traversal-bound comparison as Table 2's TC.
func BenchmarkKCore(b *testing.B) {
	s := benchScale()
	d, _ := bench.MakeDataset("LJ-sim", s)
	for _, name := range []string{"LSGraph", "Terrace"} {
		e := bench.Loaded(name, d, 0)
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				algo.KCore(e, 0)
			}
		})
	}
}

// BenchmarkSortledton reproduces the §6.1 baseline-selection comparison:
// PaC-tree versus a Sortledton-style engine on updates.
func BenchmarkSortledton(b *testing.B) {
	s := benchScale()
	d, _ := bench.MakeDataset("LJ-sim", s)
	for _, name := range []string{"PaC-tree", "Sortledton"} {
		var e engine.Engine
		if name == "Sortledton" {
			e = sortledton.New(d.N, 0)
			src, dst := bench.Split(d.Edges)
			e.InsertBatch(src, dst)
		} else {
			e = bench.Loaded(name, d, 0)
		}
		b.Run(name, func(b *testing.B) {
			insertThroughput(b, e, d, 50_000)
		})
	}
}

// BenchmarkCoreStructures microbenchmarks the paper's individual data
// structures: RIA vs PMA vs B-tree vs HITree insertion, the foundation of
// the §2.3 analysis.
func BenchmarkCoreStructures(b *testing.B) {
	b.Run("LSGraph-load-LJ", func(b *testing.B) {
		s := benchScale()
		d, _ := bench.MakeDataset("LJ-sim", s)
		src, dst := bench.Split(d.Edges)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			g := core.New(d.N, core.Config{})
			g.InsertBatch(src, dst)
		}
		b.ReportMetric(float64(len(src)*b.N)/b.Elapsed().Seconds(), "edges/s")
	})
}
