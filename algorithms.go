package lsgraph

import (
	"time"

	"lsgraph/internal/algo"
)

// BFS runs a parallel direction-optimizing breadth-first search from src
// and returns the parent of every vertex (its own ID for src, -1 for
// unreached vertices). The graph should be symmetrized, as in the paper's
// evaluation, for the bottom-up direction to be valid.
func BFS(g *Graph, src uint32) []int32 { return algo.BFS(g.g, src, 0) }

// BFSLevels returns each vertex's BFS depth from src, -1 if unreached.
func BFSLevels(g *Graph, src uint32) []int32 { return algo.BFSLevels(g.g, src, 0) }

// BC computes single-source betweenness-centrality dependency scores from
// src with Brandes' algorithm.
func BC(g *Graph, src uint32) []float64 { return algo.BC(g.g, src, 0) }

// PageRank runs iters synchronous PageRank iterations (iters <= 0 means
// 10) and returns the rank vector, which sums to 1.
func PageRank(g *Graph, iters int) []float64 { return algo.PageRank(g.g, iters, 0) }

// ConnectedComponents labels every vertex with the smallest vertex ID in
// its component (for symmetrized graphs).
func ConnectedComponents(g *Graph) []uint32 { return algo.CC(g.g, 0) }

// TriangleCount counts triangles on a symmetrized simple graph and reports
// the share of time spent flattening adjacency into arrays.
func TriangleCount(g *Graph) (triangles uint64, traversal, total time.Duration) {
	r := algo.TriangleCount(g.g, 0)
	return r.Triangles, r.Traversal, r.Total
}

// KCore returns every vertex's core number (peeling decomposition) on a
// symmetrized graph.
func KCore(g *Graph) []uint32 { return algo.KCore(g.g, 0) }
