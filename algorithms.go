package lsgraph

import (
	"time"

	"lsgraph/internal/algo"
)

// The kernels below accept any Reader: a *Graph between update batches, a
// *Store or *StoreView during concurrent ingestion, or the immutable view
// returned by Graph.Snapshot. For a consistent result while a Store is
// ingesting, run the kernel on a pinned StoreView rather than the Store
// itself. Parallelism follows GOMAXPROCS.

// BFS runs a parallel direction-optimizing breadth-first search from src
// and returns the parent of every vertex: its own ID for src, the BFS
// parent for reached vertices, and -1 for unreached ones. The graph
// should be symmetrized, as in the paper's evaluation, for the bottom-up
// direction to be valid.
func BFS(g Reader, src uint32) []int32 { return algo.BFS(g, src, 0) }

// BFSLevels runs the same search as BFS but returns each vertex's hop
// depth from src, -1 if unreached.
func BFSLevels(g Reader, src uint32) []int32 { return algo.BFSLevels(g, src, 0) }

// BC computes single-source betweenness-centrality dependency scores from
// src with Brandes' algorithm (forward BFS phases, then a backward
// dependency-accumulation sweep).
func BC(g Reader, src uint32) []float64 { return algo.BC(g, src, 0) }

// PageRank runs iters synchronous PageRank iterations (iters <= 0 means
// 10) with damping 0.85 and returns the rank vector, which sums to 1.
func PageRank(g Reader, iters int) []float64 { return algo.PageRank(g, iters, 0) }

// ConnectedComponents labels every vertex with the smallest vertex ID in
// its component, for symmetrized graphs.
func ConnectedComponents(g Reader) []uint32 { return algo.CC(g, 0) }

// TriangleCount counts triangles on a symmetrized simple graph and
// reports the share of time spent flattening adjacency into arrays (the
// "Traversal" column of the paper's Table 2) alongside the total runtime.
func TriangleCount(g Reader) (triangles uint64, traversal, total time.Duration) {
	r := algo.TriangleCount(g, 0)
	return r.Triangles, r.Traversal, r.Total
}

// KCore returns every vertex's core number via peeling decomposition on a
// symmetrized graph.
func KCore(g Reader) []uint32 { return algo.KCore(g, 0) }
