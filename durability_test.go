package lsgraph

import (
	"sort"
	"testing"
)

// storeEdges flattens a store view into a sorted edge list.
func storeEdges(s *Store) []Edge {
	v := s.View()
	defer v.Release()
	var out []Edge
	for u := uint32(0); u < v.NumVertices(); u++ {
		v.ForEachNeighbor(u, func(w uint32) { out = append(out, Edge{u, w}) })
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Src != out[j].Src {
			return out[i].Src < out[j].Src
		}
		return out[i].Dst < out[j].Dst
	})
	return out
}

func TestOpenStoreDurableRecovery(t *testing.T) {
	dir := t.TempDir()
	st, err := OpenStore(64, WithShards(2), WithDurability(dir, DurabilityOptions{}))
	if err != nil {
		t.Fatalf("OpenStore: %v", err)
	}
	if !st.Durable() {
		t.Fatal("store not durable")
	}
	st.InsertEdges([]Edge{{1, 2}, {2, 1}, {1, 3}, {3, 1}, {40, 50}})
	st.DeleteEdges([]Edge{{1, 3}})
	st.Flush()
	want := storeEdges(st)
	st.Close()

	re, err := OpenStore(64, WithShards(2), WithDurability(dir, DurabilityOptions{}))
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer re.Close()
	if rst := re.Recovery(); rst.ReplayedRecords == 0 {
		t.Fatalf("nothing replayed: %+v", rst)
	}
	got := storeEdges(re)
	if len(got) != len(want) {
		t.Fatalf("recovered %d edges, want %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("edge[%d]=%v, want %v", i, got[i], want[i])
		}
	}
}

func TestOpenStoreCheckpoint(t *testing.T) {
	dir := t.TempDir()
	st, err := OpenStore(16, WithDurability(dir, DurabilityOptions{Fsync: "always"}))
	if err != nil {
		t.Fatalf("OpenStore: %v", err)
	}
	st.InsertEdges([]Edge{{0, 1}, {1, 0}})
	st.Flush()
	if err := st.Checkpoint(); err != nil {
		t.Fatalf("Checkpoint: %v", err)
	}
	st.Close()

	re, err := OpenStore(16, WithDurability(dir, DurabilityOptions{}))
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer re.Close()
	rst := re.Recovery()
	if !rst.CheckpointLoaded {
		t.Fatalf("checkpoint not loaded: %+v", rst)
	}
	if re.NumEdges() != 2 || re.Degree(0) != 1 {
		t.Fatalf("recovered m=%d deg(0)=%d", re.NumEdges(), re.Degree(0))
	}
}

func TestOpenStoreBadFsyncPolicy(t *testing.T) {
	_, err := OpenStore(8, WithDurability(t.TempDir(), DurabilityOptions{Fsync: "sometimes"}))
	if err == nil {
		t.Fatal("bad fsync policy accepted")
	}
}

func TestOpenStoreWithoutDurability(t *testing.T) {
	st, err := OpenStore(8)
	if err != nil {
		t.Fatalf("OpenStore: %v", err)
	}
	defer st.Close()
	if st.Durable() {
		t.Fatal("plain store claims durability")
	}
	if err := st.Checkpoint(); err == nil {
		t.Fatal("Checkpoint on non-durable store succeeded")
	}
	if rst := st.Recovery(); rst.ReplayedRecords != 0 || rst.CheckpointLoaded {
		t.Fatalf("non-durable recovery stats: %+v", rst)
	}
}

func TestNewStorePanicsOnDurabilityError(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewStore did not panic on a bad durability option")
		}
	}()
	NewStore(8, WithDurability(t.TempDir(), DurabilityOptions{Fsync: "bogus"}))
}
