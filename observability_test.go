package lsgraph_test

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"lsgraph"
)

// TestObservabilityEndToEnd drives the public metrics API through a real
// update/analytics cycle and checks that each instrumented layer reported.
func TestObservabilityEndToEnd(t *testing.T) {
	prev := lsgraph.MetricsEnabled()
	lsgraph.EnableMetrics(true)
	defer lsgraph.EnableMetrics(prev)

	g := lsgraph.New(1 << 10)
	var es []lsgraph.Edge
	for v := uint32(1); v < 600; v++ {
		es = append(es, lsgraph.Edge{Src: 0, Dst: v}, lsgraph.Edge{Src: v, Dst: 0})
	}
	// Small batches keep vertex 0's per-batch group under the bulk-rebuild
	// threshold, so its overflow grows through the per-edge path and
	// crosses the array->RIA promotion.
	for lo := 0; lo < len(es); lo += 8 {
		hi := lo + 8
		if hi > len(es) {
			hi = len(es)
		}
		g.InsertEdges(es[lo:hi])
	}
	lsgraph.BFS(g, 0)
	g.DeleteEdges(es[:100])

	var buf bytes.Buffer
	if err := lsgraph.WriteMetrics(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		`lsgraph_batches_total{op="insert"}`,
		`lsgraph_batches_total{op="delete"}`,
		`lsgraph_batch_phase_nanos_count{phase="apply"}`,
		`lsgraph_overflow_promotions_total{from="array",to="ria"}`,
		`lsgraph_ria_slide_elements_count`,
		`lsgraph_algo_nanos_count{kernel="bfs"}`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("Prometheus output missing %s", want)
		}
	}

	b, err := lsgraph.MetricsSnapshotJSON()
	if err != nil {
		t.Fatal(err)
	}
	var snap map[string]any
	if err := json.Unmarshal(b, &snap); err != nil {
		t.Fatalf("snapshot is not valid JSON: %v", err)
	}
	// Vertex 0's degree crosses the array threshold, so the engine must
	// have promoted its overflow and RIA inserts must have been observed.
	if v, ok := snap[`lsgraph_overflow_promotions_total{from="array",to="ria"}`].(float64); !ok || v < 1 {
		t.Errorf("expected at least one array->ria promotion, snapshot has %v", v)
	}
	if v, ok := snap[`lsgraph_edges_changed_total{op="insert"}`].(float64); !ok || v < float64(len(es)) {
		t.Errorf("edges inserted metric %v, want >= %d", v, len(es))
	}
}
