package lsgraph

import (
	"fmt"
	"time"

	"lsgraph/internal/core"
	"lsgraph/internal/serve"
	"lsgraph/internal/wal"
)

// DurabilityOptions tunes the write-ahead log and checkpointing of a
// durable Store (WithDurability). The zero value is a sensible default:
// group-commit fsync every 50ms, 16 MiB WAL segments, checkpoints only
// when Store.Checkpoint is called.
type DurabilityOptions struct {
	// Fsync selects when WAL appends reach stable storage:
	//
	//   - "none": never fsynced explicitly; a process kill loses nothing
	//     that was written, but an OS crash can lose the page-cache tail.
	//   - "interval" (or ""): group commit — a background timer fsyncs all
	//     shard logs every FsyncInterval. The default.
	//   - "always": every append fsyncs before returning. Safest and
	//     slowest; Store.Flush is a full durability barrier under every
	//     policy, so most callers want "interval" plus Flush at commit
	//     points.
	Fsync string
	// FsyncInterval is the group-commit period for Fsync == "interval".
	// Default 50ms.
	FsyncInterval time.Duration
	// SegmentBytes caps a WAL segment file before rotation. Default 16 MiB.
	SegmentBytes int64
	// CheckpointEvery, when > 0, auto-checkpoints in the background each
	// time that many WAL records have been appended since the last
	// checkpoint, bounding both recovery replay time and WAL disk usage.
	// 0 (default) leaves checkpointing to explicit Checkpoint calls.
	CheckpointEvery int
}

// WithDurability makes the Store durable: every accepted update batch is
// appended to a per-shard write-ahead log under dir before it is applied,
// checkpoints snapshot the full graph for bounded recovery, and
// OpenStore on the same dir recovers the state. dir is created if
// missing. Ignored by Graph constructors.
//
// Durable stores should be built with OpenStore, which can report
// recovery and I/O errors; NewStore panics on them.
func WithDurability(dir string, o DurabilityOptions) Option {
	return func(s *settings) {
		s.durDir = dir
		s.dur = o
	}
}

// RecoveryStats summarizes what OpenStore loaded from the checkpoint and
// replayed from the WAL; see the field docs in internal/wal.
type RecoveryStats = wal.RecoveryStats

// OpenStore builds a Store like NewStore but reports errors instead of
// panicking, which matters once WithDurability puts disk I/O and crash
// recovery on the construction path. Opening a directory that already
// holds a durable store's state recovers it: the newest valid checkpoint
// is bulk-loaded, WAL records past its watermarks are replayed in log
// order (torn tails from a crash are truncated away), and the store
// resumes appending after the highest recovered LSN. n is the minimum
// vertex-slot count; recovery grows it to the recovered bound if that is
// larger. Without WithDurability it is equivalent to NewStore and cannot
// fail.
func OpenStore(n uint32, opts ...Option) (*Store, error) {
	var s settings
	for _, o := range opts {
		o(&s)
	}
	sopt := serve.Options{
		MaxQueue:      s.maxQueue,
		AutoRebalance: s.autoRebalance,
	}
	if s.durDir == "" {
		return &Store{st: serve.New(core.New(n, s.cfg), sopt)}, nil
	}
	pol, err := wal.ParseFsyncPolicy(s.dur.Fsync)
	if err != nil {
		return nil, err
	}
	st, err := serve.OpenDurable(n, s.cfg, sopt, serve.DurabilityOptions{
		Dir:             s.durDir,
		Fsync:           pol,
		FsyncInterval:   s.dur.FsyncInterval,
		SegmentBytes:    s.dur.SegmentBytes,
		CheckpointEvery: s.dur.CheckpointEvery,
	})
	if err != nil {
		return nil, err
	}
	return &Store{st: st}, nil
}

// Durable reports whether the store was built with WithDurability.
func (s *Store) Durable() bool { return s.st.Durable() }

// Recovery returns what OpenStore loaded and replayed when this store
// was opened (the zero value for a non-durable or brand-new store).
func (s *Store) Recovery() RecoveryStats { return s.st.Recovery() }

// Checkpoint publishes a durable checkpoint — per-shard CSR snapshots,
// the partition layout, and WAL watermarks, written to a temporary
// directory and atomically renamed — then garbage-collects WAL segments
// the checkpoint covers. Ingest and reads continue throughout; after it
// returns, recovery replays only records logged after the call.
// Concurrent calls serialize. Returns an error wrapping
// serve.ErrNotDurable on a store built without WithDurability.
func (s *Store) Checkpoint() error {
	if err := s.st.Checkpoint(); err != nil {
		return fmt.Errorf("lsgraph: checkpoint: %w", err)
	}
	return nil
}
