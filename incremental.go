package lsgraph

import "lsgraph/internal/incr"

// IncrementalCC maintains connected-component labels across update
// batches, the streaming usage mode the paper's §3.1 motivates: after
// InsertEdges, call OnInsert with the same batch; after DeleteEdges, call
// OnDelete. Insertions propagate labels only from touched vertices;
// deletions that may split a component fall back to a full recomputation
// (counted by Recomputes). The maintainer reads the graph, so its calls
// follow the same phase-alternation contract as other reads: not
// concurrent with updates.
type IncrementalCC struct {
	cc *incr.CC
}

// NewIncrementalCC computes initial component labels for g and returns a
// maintainer bound to it.
func NewIncrementalCC(g *Graph) *IncrementalCC {
	return &IncrementalCC{cc: incr.NewCC(g.g, 0)}
}

// Labels returns the current component labels, indexed by vertex: each
// vertex maps to the smallest vertex ID in its component. Callers must
// not mutate the slice.
func (c *IncrementalCC) Labels() []uint32 { return c.cc.Labels() }

// Same reports whether u and v are currently in one component.
func (c *IncrementalCC) Same(u, v uint32) bool { return c.cc.Same(u, v) }

// OnInsert updates labels after g ingested the given insertions. The
// batch must be the one passed to InsertEdges, and g must already contain
// it.
func (c *IncrementalCC) OnInsert(es []Edge) {
	src, dst := split(es)
	c.cc.OnInsert(src, dst)
}

// OnDelete updates labels after g ingested the given deletions. A
// deletion that may have split a component triggers a full recomputation.
func (c *IncrementalCC) OnDelete(es []Edge) {
	src, dst := split(es)
	c.cc.OnDelete(src, dst)
}

// Recomputes returns how many deletion batches forced a full
// recomputation instead of an incremental repair.
func (c *IncrementalCC) Recomputes() int { return c.cc.Recomputes }

// IncrementalBFS maintains hop distances from a fixed source across
// update batches, with the same OnInsert/OnDelete contract and
// phase-alternation requirements as IncrementalCC.
type IncrementalBFS struct {
	b *incr.BFS
}

// NewIncrementalBFS computes initial hop depths from src and returns a
// maintainer bound to g.
func NewIncrementalBFS(g *Graph, src uint32) *IncrementalBFS {
	return &IncrementalBFS{b: incr.NewBFS(g.g, src, 0)}
}

// Depths returns the current hop distances from the source, -1 for
// unreached vertices. Callers must not mutate the slice.
func (b *IncrementalBFS) Depths() []int32 { return b.b.Depths() }

// OnInsert updates depths after g ingested the given insertions; only
// vertices whose distance can shrink are revisited.
func (b *IncrementalBFS) OnInsert(es []Edge) {
	src, dst := split(es)
	b.b.OnInsert(src, dst)
}

// OnDelete updates depths after g ingested the given deletions. A
// deletion that may lengthen a shortest path triggers a full
// recomputation.
func (b *IncrementalBFS) OnDelete(es []Edge) {
	src, dst := split(es)
	b.b.OnDelete(src, dst)
}

// Recomputes returns how many deletion batches forced a full
// recomputation instead of an incremental repair.
func (b *IncrementalBFS) Recomputes() int { return b.b.Recomputes }
