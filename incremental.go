package lsgraph

import "lsgraph/internal/incr"

// IncrementalCC maintains connected-component labels across update
// batches: after InsertEdges, call OnInsert with the same batch; after
// DeleteEdges, call OnDelete. Insertions propagate only from touched
// vertices; deletions that may split a component fall back to a full
// recomputation.
type IncrementalCC struct {
	cc *incr.CC
}

// NewIncrementalCC computes initial labels for g.
func NewIncrementalCC(g *Graph) *IncrementalCC {
	return &IncrementalCC{cc: incr.NewCC(g.g, 0)}
}

// Labels returns current component labels (do not mutate).
func (c *IncrementalCC) Labels() []uint32 { return c.cc.Labels() }

// Same reports whether u and v are in one component.
func (c *IncrementalCC) Same(u, v uint32) bool { return c.cc.Same(u, v) }

// OnInsert updates labels after g ingested the given insertions.
func (c *IncrementalCC) OnInsert(es []Edge) {
	src, dst := split(es)
	c.cc.OnInsert(src, dst)
}

// OnDelete updates labels after g ingested the given deletions.
func (c *IncrementalCC) OnDelete(es []Edge) {
	src, dst := split(es)
	c.cc.OnDelete(src, dst)
}

// Recomputes returns how many deletions forced a full recomputation.
func (c *IncrementalCC) Recomputes() int { return c.cc.Recomputes }

// IncrementalBFS maintains hop distances from a fixed source across
// update batches, with the same OnInsert/OnDelete contract as
// IncrementalCC.
type IncrementalBFS struct {
	b *incr.BFS
}

// NewIncrementalBFS computes initial depths from src.
func NewIncrementalBFS(g *Graph, src uint32) *IncrementalBFS {
	return &IncrementalBFS{b: incr.NewBFS(g.g, src, 0)}
}

// Depths returns current hop distances, -1 for unreached (do not mutate).
func (b *IncrementalBFS) Depths() []int32 { return b.b.Depths() }

// OnInsert updates depths after g ingested the given insertions.
func (b *IncrementalBFS) OnInsert(es []Edge) {
	src, dst := split(es)
	b.b.OnInsert(src, dst)
}

// OnDelete updates depths after g ingested the given deletions.
func (b *IncrementalBFS) OnDelete(es []Edge) {
	src, dst := split(es)
	b.b.OnDelete(src, dst)
}

// Recomputes returns how many deletions forced a full recomputation.
func (b *IncrementalBFS) Recomputes() int { return b.b.Recomputes }
