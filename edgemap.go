package lsgraph

import (
	"sync/atomic"

	"lsgraph/internal/parallel"
)

// VertexSubset is a set of active vertices, the frontier abstraction of the
// Ligra-style interface LSGraph exposes to analytics (§5 "Interface"). A
// subset is built sparse (an explicit vertex list) and materializes a dense
// membership bitmap lazily on the first Contains call.
type VertexSubset struct {
	n      uint32
	sparse []uint32 // sorted when built from dense form
	dense  []bool   // nil until materialized
}

// NewVertexSubset returns a subset of the universe [0, n) containing the
// vertices vs.
func NewVertexSubset(n uint32, vs ...uint32) *VertexSubset {
	s := &VertexSubset{n: n, sparse: append([]uint32(nil), vs...)}
	return s
}

// Len returns the number of active vertices.
func (s *VertexSubset) Len() int { return len(s.sparse) }

// IsEmpty reports whether no vertices are active — the usual termination
// test of a frontier loop.
func (s *VertexSubset) IsEmpty() bool { return len(s.sparse) == 0 }

// Vertices returns the active vertices. Callers must not mutate the slice.
func (s *VertexSubset) Vertices() []uint32 { return s.sparse }

// Contains reports whether v is active. The first call materializes the
// dense bitmap; Contains is not safe to call concurrently with itself
// until that has happened.
func (s *VertexSubset) Contains(v uint32) bool {
	if s.dense == nil {
		s.materialize()
	}
	return s.dense[v]
}

func (s *VertexSubset) materialize() {
	s.dense = make([]bool, s.n)
	for _, v := range s.sparse {
		s.dense[v] = true
	}
}

// EdgeMap applies update to every edge (v, u) with v in the frontier,
// collecting into the returned subset each target u for which update
// returned true and cond(u) held before the update (cond may be nil for
// always-true). update may be called concurrently and must be atomic with
// respect to its own state; a target is added to the output at most once.
// This is the primitive the paper extends from Ligra and implements over
// HITree's Traverse. Any Reader works as the graph: a *Graph between
// batches, or a pinned *StoreView while a Store is ingesting.
func EdgeMap(g Reader, frontier *VertexSubset, cond func(u uint32) bool, update func(v, u uint32) bool) *VertexSubset {
	n := g.NumVertices()
	out := make([]uint32, n)
	added := make([]int32, n)
	fs := frontier.Vertices()
	bg, _ := g.(BlockReader) // detect the block read path once per run
	parallel.For(len(fs), 0, func(i int) {
		v := fs[i]
		visit := func(u uint32) {
			if cond != nil && !cond(u) {
				return
			}
			if update(v, u) && atomic.CompareAndSwapInt32(&added[u], 0, 1) {
				out[u] = u
			}
		}
		if bg != nil {
			bg.NeighborBlocks(v, func(bs []uint32) bool {
				for _, u := range bs {
					visit(u)
				}
				return true
			})
			return
		}
		g.ForEachNeighbor(v, visit)
	})
	next := &VertexSubset{n: n}
	for u := range added {
		if added[u] == 1 {
			next.sparse = append(next.sparse, out[u])
		}
	}
	return next
}

// VertexMap applies f to every vertex in the subset in parallel and
// returns the subset of vertices for which f returned true. f may be
// called concurrently and must be atomic with respect to its own state.
func VertexMap(s *VertexSubset, f func(v uint32) bool) *VertexSubset {
	keep := make([]int32, len(s.sparse))
	parallel.For(len(s.sparse), 0, func(i int) {
		if f(s.sparse[i]) {
			keep[i] = 1
		}
	})
	next := &VertexSubset{n: s.n}
	for i, k := range keep {
		if k == 1 {
			next.sparse = append(next.sparse, s.sparse[i])
		}
	}
	return next
}
