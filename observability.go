package lsgraph

import (
	"io"
	"net/http"

	"lsgraph/internal/obs"
)

// Observability: the engine keeps a process-wide metrics registry
// (internal/obs) permanently wired through the batch pipeline, the RIA and
// HITree structural operations, the worker pool, the analytics kernels,
// and the Store serving layer (queue depth, coalescing, snapshot publish
// latency, epoch lag, reclamation). Collection is off by default and
// costs a single atomic load per instrumented operation while off; these
// functions expose the registry to embedding applications. The
// cmd/lsgraph and cmd/lsbench CLIs expose the same data via their
// -metrics flag.

// EnableMetrics turns metric collection on or off (off by default).
// Values collected while enabled are retained across toggles, so a
// workload can be bracketed by enable/disable and inspected afterwards.
func EnableMetrics(on bool) { obs.SetEnabled(on) }

// MetricsEnabled reports whether metric collection is currently on.
func MetricsEnabled() bool { return obs.Enabled() }

// WriteMetrics writes every engine metric to w in the Prometheus text
// exposition format (one HELP/TYPE header per metric name, histograms in
// cumulative-bucket form).
func WriteMetrics(w io.Writer) error { return obs.Default.WritePrometheus(w) }

// MetricsSnapshotJSON returns every engine metric as an indented JSON
// document: counters and gauges as numbers, histograms as
// {count, sum, unit, buckets} objects.
func MetricsSnapshotJSON() ([]byte, error) { return obs.SnapshotJSON() }

// MetricsHandler returns an http.Handler serving /metrics (Prometheus
// text), /metrics.json (JSON snapshot), and /debug/pprof/*, for mounting
// in an embedding application's own server.
func MetricsHandler() http.Handler { return obs.Handler(obs.Default) }

// ServeMetrics enables collection and serves MetricsHandler on addr
// (e.g. ":6060"). It blocks until the server fails; run it in a
// goroutine.
func ServeMetrics(addr string) error { return obs.Serve(addr) }
