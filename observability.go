package lsgraph

import (
	"io"
	"net/http"

	"lsgraph/internal/obs"
)

// Observability: the engine keeps a process-wide metrics registry
// (internal/obs) permanently wired through the batch pipeline, the RIA and
// HITree structural operations, the worker pool, and the analytics
// kernels. Collection is off by default and costs a single atomic load per
// instrumented operation while off; these functions expose the registry to
// embedding applications. The cmd/lsgraph and cmd/lsbench CLIs expose the
// same data via their -metrics flag.

// EnableMetrics turns metric collection on or off (off by default).
// Collected values are retained across toggles.
func EnableMetrics(on bool) { obs.SetEnabled(on) }

// MetricsEnabled reports whether metric collection is on.
func MetricsEnabled() bool { return obs.Enabled() }

// WriteMetrics writes every engine metric in the Prometheus text
// exposition format.
func WriteMetrics(w io.Writer) error { return obs.Default.WritePrometheus(w) }

// MetricsSnapshotJSON returns every engine metric as an indented JSON
// document (counters and gauges as numbers, histograms as
// {count, sum, unit, buckets} objects).
func MetricsSnapshotJSON() ([]byte, error) { return obs.SnapshotJSON() }

// MetricsHandler returns an http.Handler serving /metrics (Prometheus
// text), /metrics.json (JSON snapshot), and /debug/pprof/*.
func MetricsHandler() http.Handler { return obs.Handler(obs.Default) }

// ServeMetrics enables collection and serves MetricsHandler on addr
// (e.g. ":6060"). It blocks; run it in a goroutine.
func ServeMetrics(addr string) error { return obs.Serve(addr) }
