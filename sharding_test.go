package lsgraph

import (
	"testing"
	"time"
)

// TestShardedGraphAndStoreEquivalence builds the same graph unsharded and
// at several shard counts, through both the phase-alternating Graph and
// the concurrent Store, and checks that structure and kernel results are
// identical — WithShards is a pure partitioning of the same graph.
func TestShardedGraphAndStoreEquivalence(t *testing.T) {
	es := symEdges(t, 9, 4000, 21)
	base := NewFromEdges(512, es)
	wantCC := ConnectedComponents(base)
	wantBFS := BFSLevels(base, 0)

	for _, S := range []int{2, 4, 8} {
		g := NewFromEdges(512, es, WithShards(S), WithWorkers(4))
		if g.NumEdges() != base.NumEdges() {
			t.Fatalf("S=%d: graph m=%d want %d", S, g.NumEdges(), base.NumEdges())
		}
		for v := uint32(0); v < 512; v++ {
			if g.Degree(v) != base.Degree(v) {
				t.Fatalf("S=%d: deg(%d)=%d want %d", S, v, g.Degree(v), base.Degree(v))
			}
		}

		st := NewStore(512, WithShards(S), WithWorkers(4))
		if st.Shards() != S {
			t.Fatalf("Shards()=%d want %d", st.Shards(), S)
		}
		st.InsertEdges(es)
		st.Flush()
		v := st.View()
		if v.NumEdges() != base.NumEdges() {
			t.Fatalf("S=%d: view m=%d want %d", S, v.NumEdges(), base.NumEdges())
		}
		gotCC := ConnectedComponents(v)
		gotBFS := BFSLevels(v, 0)
		for u := uint32(0); u < 512; u++ {
			if gotCC[u] != wantCC[u] {
				t.Fatalf("S=%d: CC label of %d differs", S, u)
			}
			if gotBFS[u] != wantBFS[u] {
				t.Fatalf("S=%d: BFS level of %d differs", S, u)
			}
		}
		v.Release()
		st.Close()
	}
}

// TestStoreAutoGrowPublic checks the public-surface auto-grow contract:
// inserting an edge beyond the store's vertex space grows it instead of
// panicking, and the new vertices are readable after flush.
func TestStoreAutoGrowPublic(t *testing.T) {
	st := NewStore(4, WithShards(2))
	defer st.Close()
	st.InsertEdges([]Edge{{Src: 1000, Dst: 2}, {Src: 2, Dst: 1000}})
	st.Flush()
	if st.NumVertices() < 1001 {
		t.Fatalf("NumVertices=%d, want >= 1001", st.NumVertices())
	}
	v := st.View()
	defer v.Release()
	if v.Degree(1000) != 1 || v.Neighbors(1000)[0] != 2 {
		t.Fatalf("grown vertex: deg=%d ns=%v", v.Degree(1000), v.Neighbors(1000))
	}
	if got := BFS(v, 2); got[1000] != 2 {
		t.Fatalf("BFS across grown space: parent[1000]=%d", got[1000])
	}
}

// TestStoreRebalancePublic exercises the public rebalancing surface:
// Partition introspection, an explicit Rebalance on a skewed store, and
// kernel agreement with an unsharded baseline after the map changes.
func TestStoreRebalancePublic(t *testing.T) {
	const n = 2048
	st := NewStore(n, WithShards(4))
	defer st.Close()
	// Skew: every source in the first shard's range.
	var es []Edge
	for i := uint32(0); i < 6000; i++ {
		es = append(es, Edge{Src: i % 64, Dst: (i*31 + 1) % n})
	}
	st.InsertEdges(es)
	st.Flush()

	before := st.Partition()
	if before.Epoch != 0 || len(before.Starts) != 4 {
		t.Fatalf("initial partition %+v", before)
	}
	res, err := st.Rebalance()
	if err != nil {
		t.Fatal(err)
	}
	if res.Moves == 0 || res.SkewPctAfter > res.SkewPctBefore/2 {
		t.Fatalf("rebalance ineffective: %+v", res)
	}
	if p := st.Partition(); p.Epoch == 0 {
		t.Fatal("partition epoch did not advance")
	}

	base := NewFromEdges(n, es)
	v := st.View()
	defer v.Release()
	if v.NumEdges() != base.NumEdges() {
		t.Fatalf("rebalanced store has %d edges, baseline %d", v.NumEdges(), base.NumEdges())
	}
	want := ConnectedComponents(base)
	got := ConnectedComponents(v)
	for u := range want {
		if got[u] != want[u] {
			t.Fatalf("CC label of %d differs after rebalance", u)
		}
	}
}

// TestStoreAutoRebalancePublic checks the WithAutoRebalance option end to
// end: a skewed ingest stream triggers background boundary moves without
// any explicit Rebalance call.
func TestStoreAutoRebalancePublic(t *testing.T) {
	st := NewStore(2048, WithShards(4), WithAutoRebalance(1.3))
	defer st.Close()
	var es []Edge
	for i := uint32(0); i < 8000; i++ {
		es = append(es, Edge{Src: i % 32, Dst: (i*17 + 1) % 2048})
	}
	st.InsertEdges(es)
	st.Flush()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if st.Stats().BoundaryMoves > 0 {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatal("auto-rebalancer never moved a boundary on a skewed store")
}
